package power

import (
	"testing"

	"ugpu/internal/trace"
)

// govFixture builds a manager with scripted counters and a capturing tracer.
// busy drives the SMActive hook: each domain reports busy active cycles per
// sampled cycle (so power is controllable from the test).
type govFixture struct {
	m      *Manager
	tr     *trace.Tracer
	busy   float64 // active SM-cycles per wall cycle per domain
	cycles uint64
}

func newGovFixture(t *testing.T, cfg Config) *govFixture {
	t.Helper()
	f := &govFixture{tr: trace.New(1 << 16)}
	m, err := NewManager(16, 8, cfg, f.tr)
	if err != nil {
		t.Fatal(err)
	}
	m.SetHooks(Hooks{
		SMActive: func(dom int) uint64 { return uint64(float64(f.cycles) * f.busy) },
		Channel:  func(ch int) (uint64, uint64) { return 0, 0 },
	})
	f.m = m
	return f
}

// step advances one epoch and runs the governor.
func (f *govFixture) step(g *Governor, epoch uint64, slices []Slice) {
	f.cycles += epoch
	g.Step(f.cycles, slices)
}

// clampEvents counts KPower clamp-enter/exit events in the captured trace.
func (f *govFixture) clampEvents() (enter, exit int) {
	for _, e := range f.tr.Events() {
		if e.Kind != trace.KPower {
			continue
		}
		switch EventKind(e.A0) {
		case EventClampEnter:
			enter++
		case EventClampExit:
			exit++
		}
	}
	return
}

// TestGovernorZeroTenantsParksFloor: an empty slice list (zero-tenant GPU)
// parks every domain at its lowest operating point, and attaching a tenant
// later restores its domains to nominal.
func TestGovernorZeroTenantsParksFloor(t *testing.T) {
	f := newGovFixture(t, Config{})
	g := NewGovernor(f.m, 4, GovernorConfig{})
	f.step(g, 5000, nil)
	floorSM := len(f.m.SMStates()) - 1
	floorCh := len(f.m.HBMStates()) - 1
	for d := 0; d < f.m.NumSMDomains(); d++ {
		if got := f.m.SMState(d); got != floorSM {
			t.Errorf("zero tenants: SM domain %d state %d, want floor %d", d, got, floorSM)
		}
	}
	for c := 0; c < f.m.NumChannels(); c++ {
		if got := f.m.ChannelState(c); got != floorCh {
			t.Errorf("zero tenants: channel %d state %d, want floor %d", c, got, floorCh)
		}
	}
	// Steady state: a second empty step changes nothing.
	before := f.m.Transitions()
	f.step(g, 5000, nil)
	if f.m.Transitions() != before {
		t.Errorf("empty steady state still transitioning: %d -> %d", before, f.m.Transitions())
	}
	// A tenant attaches on domain 0 / channels 0-1: its domains come back to
	// nominal, the rest stay parked.
	s := Slice{Slot: 0, Gen: 1, MemDegree: 1.0, SMDomains: []int{0}, Channels: []int{0, 1}}
	f.step(g, 5000, []Slice{s})
	if got := f.m.SMState(0); got != 0 {
		t.Errorf("attached tenant's SM domain at state %d, want nominal", got)
	}
	if got := f.m.SMState(1); got != floorSM {
		t.Errorf("unowned SM domain left the floor: state %d", got)
	}
}

// TestGovernorSingleStateNoOp: single-entry operating-point tables (the
// baseline arm's config) freeze every domain at nominal — zero transitions no
// matter what the slices look like.
func TestGovernorSingleStateNoOp(t *testing.T) {
	f := newGovFixture(t, Config{
		SMStates:  DefaultSMStates()[:1],
		HBMStates: DefaultHBMStates()[:1],
	})
	f.busy = 4
	g := NewGovernor(f.m, 4, GovernorConfig{Cap: 1}) // absurdly tight cap
	slices := []Slice{
		{Slot: 0, Gen: 1, MemDegree: 3.0, SMDomains: []int{0, 1}, Channels: []int{0}},
		{Slot: 1, Gen: 2, LC: true, MemDegree: 0.1, SMDomains: []int{2}, Channels: []int{1}},
	}
	for i := 0; i < 10; i++ {
		f.step(g, 5000, slices)
	}
	f.step(g, 5000, nil) // even parking has nowhere to go
	if f.m.Transitions() != 0 {
		t.Errorf("single-state tables produced %d transitions, want 0", f.m.Transitions())
	}
	// The cap controller saturates its (zero-travel) depth and clamps once.
	if g.maxDepth() != 0 {
		t.Fatalf("maxDepth = %d, want 0 for single-state tables", g.maxDepth())
	}
	if !g.Clamped() {
		t.Error("unsatisfiable cap with no travel did not clamp")
	}
}

// TestGovernorMemoryBoundDownclocksSMs: a persistently memory-bound BE slice
// has its SM domains stepped down after the classification streak, while its
// channels (demand above ChanLow) stay nominal; a compute-bound slice is the
// mirror image.
func TestGovernorClassificationSteps(t *testing.T) {
	f := newGovFixture(t, Config{})
	g := NewGovernor(f.m, 4, GovernorConfig{})
	memBound := Slice{Slot: 0, Gen: 1, MemDegree: 2.0, SMDomains: []int{0}, Channels: []int{0}}
	compute := Slice{Slot: 1, Gen: 2, MemDegree: 0.2, SMDomains: []int{1}, Channels: []int{1}}
	for i := 0; i < 8; i++ {
		f.step(g, 5000, []Slice{memBound, compute})
	}
	if got := f.m.SMState(0); got == 0 {
		t.Error("memory-bound slice's SM domain still at nominal after 8 epochs")
	}
	if got := f.m.ChannelState(0); got != 0 {
		t.Errorf("memory-bound slice's channel throttled to %d, want nominal", got)
	}
	if got := f.m.SMState(1); got != 0 {
		t.Errorf("compute-bound slice's SM domain throttled to %d, want nominal", got)
	}
	if got := f.m.ChannelState(1); got == 0 {
		t.Error("compute-bound slice's channel still at nominal after 8 epochs")
	}
	// Degrees normalize to 0.8 — below MemLow (SMs recover) and above
	// ChanHigh (channels recover): both slices return to nominal.
	memBound.MemDegree, compute.MemDegree = 0.8, 0.8
	for i := 0; i < 8; i++ {
		f.step(g, 5000, []Slice{memBound, compute})
	}
	if got := f.m.SMState(0); got != 0 {
		t.Errorf("recovered slice's SM domain stuck at %d", got)
	}
	if got := f.m.ChannelState(1); got != 0 {
		t.Errorf("recovered slice's channel stuck at %d", got)
	}
}

// TestGovernorCapShavesBEBeforeLC: an all-slices-resident GPU under a tight
// cap throttles best-effort slices to the floor before latency-critical ones
// move at all; an all-LC population under the same cap does get shaved (LC is
// protected from the efficiency pass, not from the budget).
func TestGovernorCapShavesBEBeforeLC(t *testing.T) {
	f := newGovFixture(t, Config{})
	f.busy = 4 // every domain fully busy: high measured power
	be := Slice{Slot: 0, Gen: 1, MemDegree: 1.0, SMDomains: []int{0}, Channels: []int{0}}
	lc := Slice{Slot: 1, Gen: 2, LC: true, MemDegree: 1.0, SMDomains: []int{1}, Channels: []int{1}}
	g := NewGovernor(f.m, 4, GovernorConfig{Cap: 50}) // far below measured
	maxSM := len(f.m.SMStates()) - 1
	maxCh := len(f.m.HBMStates()) - 1
	// Walk the cap depth until the BE slice is at both floors.
	for i := 0; i < maxSM+maxCh; i++ {
		f.step(g, 5000, []Slice{be, lc})
		if f.m.SMState(1) != 0 || f.m.ChannelState(1) != 0 {
			t.Fatalf("epoch %d: LC shaved (sm=%d ch=%d) before BE at floor (sm=%d ch=%d)",
				i, f.m.SMState(1), f.m.ChannelState(1), f.m.SMState(0), f.m.ChannelState(0))
		}
	}
	if f.m.SMState(0) != maxSM || f.m.ChannelState(0) != maxCh {
		t.Fatalf("BE slice not at floor after %d epochs: sm=%d ch=%d",
			maxSM+maxCh, f.m.SMState(0), f.m.ChannelState(0))
	}
	// Further depth now reaches the LC slice.
	for i := 0; i < maxSM+maxCh; i++ {
		f.step(g, 5000, []Slice{be, lc})
	}
	if f.m.SMState(1) == 0 && f.m.ChannelState(1) == 0 {
		t.Error("LC slice untouched with BE at floor and power still over budget")
	}

	// All-LC overload under the same tight cap: LC throttles via the cap path
	// even though the efficiency pass never touches LC.
	f2 := newGovFixture(t, Config{})
	f2.busy = 4
	g2 := NewGovernor(f2.m, 4, GovernorConfig{Cap: 50})
	lcs := []Slice{
		{Slot: 0, Gen: 1, LC: true, MemDegree: 1.0, SMDomains: []int{0}, Channels: []int{0}},
		{Slot: 1, Gen: 2, LC: true, MemDegree: 1.0, SMDomains: []int{1}, Channels: []int{1}},
	}
	for i := 0; i < 2*(maxSM+maxCh)+2; i++ {
		f2.step(g2, 5000, lcs)
	}
	if f2.m.SMState(0) == 0 {
		t.Error("all-LC GPU under unsatisfiable cap never throttled")
	}
	if !g2.Clamped() {
		t.Error("all-LC GPU at the floor with power over budget not clamped")
	}
}

// TestGovernorClampSingleEvent: a cap below the static floor drives the
// controller to max depth, emits exactly one clamp-enter event, and holds
// there without oscillating; lifting the cap emits exactly one clamp-exit.
func TestGovernorClampSingleEvent(t *testing.T) {
	f := newGovFixture(t, Config{})
	f.busy = 1
	g := NewGovernor(f.m, 4, GovernorConfig{Cap: 0.001}) // below static power
	s := Slice{Slot: 0, Gen: 1, MemDegree: 1.0, SMDomains: []int{0}, Channels: []int{0}}
	for i := 0; i < 30; i++ {
		f.step(g, 5000, []Slice{s})
	}
	if !g.Clamped() {
		t.Fatal("cap below static power did not clamp")
	}
	if g.CapDepth() != g.maxDepth() {
		t.Errorf("CapDepth = %d, want maxDepth %d", g.CapDepth(), g.maxDepth())
	}
	enter, exit := f.clampEvents()
	if enter != 1 || exit != 0 {
		t.Errorf("clamp events over 30 over-budget epochs: enter=%d exit=%d, want 1/0", enter, exit)
	}
	depth := g.CapDepth()
	for i := 0; i < 5; i++ {
		f.step(g, 5000, []Slice{s})
		if g.CapDepth() != depth {
			t.Fatalf("clamped depth oscillated: %d -> %d", depth, g.CapDepth())
		}
	}
	// Lift the cap: exactly one exit, depth unwinds.
	g.SetCap(0)
	f.step(g, 5000, []Slice{s})
	enter, exit = f.clampEvents()
	if enter != 1 || exit != 1 {
		t.Errorf("after lifting cap: enter=%d exit=%d, want 1/1", enter, exit)
	}
	if g.CapDepth() != 0 {
		t.Errorf("uncapped CapDepth = %d, want 0", g.CapDepth())
	}
}

// TestGovernorGenerationResetsHysteresis: a new tenant in a recycled slot
// (changed Gen) starts with fresh hysteresis — the departed tenant's streaks
// and state do not leak.
func TestGovernorGenerationResetsHysteresis(t *testing.T) {
	f := newGovFixture(t, Config{})
	g := NewGovernor(f.m, 4, GovernorConfig{})
	memBound := Slice{Slot: 0, Gen: 1, MemDegree: 2.0, SMDomains: []int{0}, Channels: []int{0}}
	for i := 0; i < 8; i++ {
		f.step(g, 5000, []Slice{memBound})
	}
	if f.m.SMState(0) == 0 {
		t.Fatal("setup: memory-bound slice never throttled")
	}
	// New tenant, same slot, compute-bound: domain returns to nominal on the
	// next step (the slot's remembered smState must not survive the Gen flip).
	next := Slice{Slot: 0, Gen: 2, MemDegree: 0.2, SMDomains: []int{0}, Channels: []int{0}}
	f.step(g, 5000, []Slice{next})
	if got := f.m.SMState(0); got != 0 {
		t.Errorf("recycled slot inherited old tenant's SM throttle: state %d", got)
	}
}

// TestGovernorStateFloorApplied: a gray-degradation floor forces every
// domain down to at least the floor index on the next step, persists across
// later steps (the efficiency pass would otherwise restore compute-bound
// domains to nominal), and clears back to governed behavior.
func TestGovernorStateFloorApplied(t *testing.T) {
	f := newGovFixture(t, Config{})
	g := NewGovernor(f.m, 4, GovernorConfig{})
	// Compute-bound slice: without a floor the governor keeps SMs at nominal.
	s := Slice{Slot: 0, Gen: 1, MemDegree: 0.2, SMDomains: []int{0, 1}, Channels: []int{0}}
	f.step(g, 5000, []Slice{s})
	if got := f.m.SMState(0); got != 0 {
		t.Fatalf("setup: compute-bound SM domain at state %d, want nominal", got)
	}

	g.SetStateFloor(3, 1)
	if sm, ch := g.StateFloor(); sm != 3 || ch != 1 {
		t.Fatalf("StateFloor = (%d,%d), want (3,1)", sm, ch)
	}
	for i := 0; i < 4; i++ {
		f.step(g, 5000, []Slice{s})
		for d := 0; d < f.m.NumSMDomains(); d++ {
			if got := f.m.SMState(d); got < 3 {
				t.Fatalf("step %d: SM domain %d at state %d, want >= floor 3", i, d, got)
			}
		}
		for c := 0; c < f.m.NumChannels(); c++ {
			if got := f.m.ChannelState(c); got < 1 {
				t.Fatalf("step %d: channel %d at state %d, want >= floor 1", i, c, got)
			}
		}
	}

	// Clearing the floor lets the efficiency pass restore nominal.
	g.SetStateFloor(0, 0)
	for i := 0; i < 8; i++ {
		f.step(g, 5000, []Slice{s})
	}
	if got := f.m.SMState(0); got != 0 {
		t.Errorf("cleared floor: compute-bound SM domain stuck at state %d", got)
	}
}

// TestGovernorStateFloorClamped: a floor deeper than the ladder clamps to
// the deepest configured state instead of indexing out of range, and
// negative floors are treated as zero.
func TestGovernorStateFloorClamped(t *testing.T) {
	f := newGovFixture(t, Config{})
	g := NewGovernor(f.m, 4, GovernorConfig{})
	maxSM := len(f.m.SMStates()) - 1
	maxCh := len(f.m.HBMStates()) - 1
	s := Slice{Slot: 0, Gen: 1, MemDegree: 1.0, SMDomains: []int{0}, Channels: []int{0}}

	g.SetStateFloor(99, 99)
	f.step(g, 5000, []Slice{s})
	if got := f.m.SMState(0); got != maxSM {
		t.Errorf("over-deep floor: SM state %d, want clamp to %d", got, maxSM)
	}
	if got := f.m.ChannelState(0); got != maxCh {
		t.Errorf("over-deep floor: channel state %d, want clamp to %d", got, maxCh)
	}

	g.SetStateFloor(-5, -5)
	if sm, ch := g.StateFloor(); sm != 0 || ch != 0 {
		t.Errorf("negative floor stored as (%d,%d), want (0,0)", sm, ch)
	}
}

// TestGovernorStateFloorComposesWithCap: with both a gray floor and a power
// cap active, domains sit at least as deep as the floor, and the cap
// controller keeps working on top of it (deeper is allowed, shallower not).
func TestGovernorStateFloorComposesWithCap(t *testing.T) {
	f := newGovFixture(t, Config{})
	f.busy = 4
	g := NewGovernor(f.m, 4, GovernorConfig{Cap: 50})
	g.SetStateFloor(2, 1)
	s := Slice{Slot: 0, Gen: 1, MemDegree: 1.0, SMDomains: []int{0}, Channels: []int{0}}
	for i := 0; i < 12; i++ {
		f.step(g, 5000, []Slice{s})
		if got := f.m.SMState(0); got < 2 {
			t.Fatalf("step %d: cap pass lifted SM above the gray floor: state %d", i, got)
		}
		if got := f.m.ChannelState(0); got < 1 {
			t.Fatalf("step %d: cap pass lifted channel above the gray floor: state %d", i, got)
		}
	}
	if g.CapDepth() == 0 {
		t.Error("unsatisfiable cap never built depth with a floor in force")
	}
}
