package power

// State digests (ISSUE 9). Everything a future cycle can observe folds in:
// domain states, transition deadlines, meter anchors, per-state attribution,
// and the governor's hysteresis. Two fields are deliberately excluded as
// mode-dependent caches: domain.full is restored lazily by SMOpen (a
// fast-forwarded span may never query the gate on the restoring cycle, so
// its raw value differs between modes while the semantic state — ratio and
// window — is identical), and Manager.smNotFull mirrors it. The governor's
// desSM/desCh scratch is rebuilt from scratch every Step and is excluded too.

import "ugpu/internal/digest"

func (d *domain) appendDigest(h digest.Hash) digest.Hash {
	h = h.Int(d.state).U64(d.until).U32(d.num).U32(d.den).
		U64(d.lastCycle).U64(d.lastActive).U64(d.lastAccess).U64(d.lastAct)
	for _, v := range d.resCycles {
		h = h.U64(v)
	}
	for _, v := range d.active {
		h = h.U64(v)
	}
	for _, v := range d.activates {
		h = h.U64(v)
	}
	return h
}

// AppendDigest folds all DVFS domain and energy-meter state. Nil-safe: a GPU
// without power management digests as a single absence bit.
func (m *Manager) AppendDigest(h digest.Hash) digest.Hash {
	if m == nil {
		return h.Bool(false)
	}
	h = h.Bool(true).Int(len(m.smDom)).Int(len(m.chDom))
	for i := range m.smDom {
		h = m.smDom[i].appendDigest(h)
	}
	for i := range m.chDom {
		h = m.chDom[i].appendDigest(h)
	}
	return h.U64(m.sampledTo).U64(m.transitions).
		U64(m.lastPowerAt).F64(m.lastPowerE).F64(m.lastPower)
}

// AppendDigest folds the governor's hysteresis and cap-controller state.
// Nil-safe for runs without a governor.
func (g *Governor) AppendDigest(h digest.Hash) digest.Hash {
	if g == nil {
		return h.Bool(false)
	}
	h = h.Bool(true).F64(g.cfg.Cap).Int(g.capDepth).Bool(g.clamped)
	h = h.Int(len(g.slots))
	for i := range g.slots {
		s := &g.slots[i]
		h = h.Int(s.gen).Int(s.memStreak).Int(s.upStreak).
			Int(s.dnChan).Int(s.upChan).Int(s.hold).Int(s.holdChan).
			Int(s.smState).Int(s.chState)
	}
	return h
}
