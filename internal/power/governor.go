package power

// The per-GPU governor (ISSUE 8 tentpole part 2/3): steps at epoch
// boundaries, reads the same profiling signal that drives unbalanced
// partitioning (the demand/supply memory-boundedness degree), and applies
// the paper's insight to frequency instead of allocation — a memory-bound
// slice's SMs are mostly stalled on DRAM, so downclocking them converts
// full-price stalled-active cycles into cheap gated cycles with little IPC
// cost, while a compute-bound slice's channels idle and can run slower.
// Hysteresis (classification streaks plus a post-change hold) keeps
// decisions stable; a power-cap controller layered on top shaves best-effort
// slices to their frequency floor before touching latency-critical ones.

// Slice is one resident tenant's view for a governor step, in ascending
// slot order.
type Slice struct {
	// Slot is the application slot.
	Slot int
	// Gen identifies the tenant occupying the slot (job id in serving,
	// the slot itself closed-world); a change resets the slot's hysteresis.
	Gen int
	// LC marks a latency-critical tenant: the efficiency pass limits it to
	// LCMaxStep and the cap controller shaves it only after every
	// best-effort slice is at the floor.
	LC bool
	// MemDegree is the slice's demand/supply ratio from the partitioning
	// model (>1 = memory-bound).
	MemDegree float64
	// SMDomains and Channels are the frequency domains the slice's
	// allocation touches this epoch.
	SMDomains []int
	Channels  []int
}

// GovernorConfig tunes the governor; zero fields take defaults.
type GovernorConfig struct {
	// Cap is this GPU's power budget in watts (0 = uncapped). The cluster
	// arbiter overrides it per epoch via SetCap.
	Cap float64
	// MemHigh: a slice at or above this degree for StreakEpochs epochs has
	// its SMs stepped down one state. The default sits just above the
	// memory-bound classification boundary (degree 1): above it, issue-rate
	// cuts convert stalled-active cycles to gated ones with little IPC cost.
	MemHigh float64
	// MemLow: a slice at or below this degree is stepped back up.
	MemLow float64
	// ChanLow: a slice at or below this degree (ample bandwidth headroom)
	// for StreakEpochs epochs has its channels stepped down.
	ChanLow float64
	// ChanHigh: a slice at or above this degree has its channels restored.
	ChanHigh float64
	// LCMaxStep caps how far the efficiency pass may downclock an LC
	// slice's SMs (0 = never).
	LCMaxStep int
	// StreakEpochs is how many consecutive epochs a classification must
	// hold before a step.
	StreakEpochs int
	// HoldEpochs is the post-change cooldown before the next step.
	HoldEpochs int
	// CapHysteresis is the fraction of Cap below which the controller
	// starts undoing cap-forced steps (the [h·Cap, Cap] band is stable).
	CapHysteresis float64
}

func (c GovernorConfig) withDefaults() GovernorConfig {
	if c.MemHigh == 0 {
		c.MemHigh = 1.15
	}
	if c.MemLow == 0 {
		c.MemLow = 1.05
	}
	if c.ChanLow == 0 {
		c.ChanLow = 0.45
	}
	if c.ChanHigh == 0 {
		c.ChanHigh = 0.75
	}
	if c.StreakEpochs == 0 {
		c.StreakEpochs = 2
	}
	if c.HoldEpochs == 0 {
		c.HoldEpochs = 1
	}
	if c.CapHysteresis == 0 {
		c.CapHysteresis = 0.90
	}
	return c
}

// slotGov is one slot's hysteresis state.
type slotGov struct {
	gen       int
	memStreak int
	upStreak  int
	dnChan    int
	upChan    int
	hold      int
	holdChan  int
	smState   int
	chState   int
}

// Governor owns the DVFS policy for one GPU. It is purely epoch-boundary
// code: Step never runs inside a simulated span.
type Governor struct {
	m   *Manager
	cfg GovernorConfig

	slots    []slotGov
	capDepth int
	clamped  bool

	// floorSM/floorCh are externally forced minimum state indices (gray
	// degradation): every domain runs at least this many states below
	// nominal until the floor is cleared. The governor's own efficiency and
	// cap passes compose on top — they may slow a domain further, never
	// bring it back above the floor.
	floorSM int
	floorCh int

	desSM []int // scratch: per-domain desired state
	desCh []int
}

// NewGovernor builds a governor over the manager's domains for up to
// maxSlots resident tenants.
func NewGovernor(m *Manager, maxSlots int, cfg GovernorConfig) *Governor {
	g := &Governor{
		m:     m,
		cfg:   cfg.withDefaults(),
		slots: make([]slotGov, maxSlots),
		desSM: make([]int, m.NumSMDomains()),
		desCh: make([]int, m.NumChannels()),
	}
	for i := range g.slots {
		g.slots[i].gen = -1
	}
	return g
}

// SetCap replaces the power budget (cluster arbitration path).
func (g *Governor) SetCap(watts float64) { g.cfg.Cap = watts }

// Cap returns the current budget (0 = uncapped).
func (g *Governor) Cap() float64 { return g.cfg.Cap }

// Clamped reports whether the cap controller is at the frequency floor with
// measured power still over budget.
func (g *Governor) Clamped() bool { return g.clamped }

// CapDepth is the number of cap-forced extra down-steps currently applied.
func (g *Governor) CapDepth() int { return g.capDepth }

// SetStateFloor forces minimum SM and HBM state indices on every domain
// (gray-failure degradation; 0,0 clears). Floors persist across Step calls,
// so governed GPUs stay degraded until the floor is lifted — without this
// the efficiency pass would restore nominal states at the next boundary.
// Values beyond the deepest configured state clamp there at application.
func (g *Governor) SetStateFloor(sm, ch int) {
	if sm < 0 {
		sm = 0
	}
	if ch < 0 {
		ch = 0
	}
	g.floorSM, g.floorCh = sm, ch
}

// StateFloor returns the forced minimum (SM, HBM) state indices in force.
func (g *Governor) StateFloor() (sm, ch int) { return g.floorSM, g.floorCh }

// maxDepth is the cap controller's travel: BE slices to both floors first,
// then LC slices to both floors.
func (g *Governor) maxDepth() int {
	return 2 * ((len(g.m.cfg.SMStates) - 1) + (len(g.m.cfg.HBMStates) - 1))
}

// Step runs one governor epoch: update per-slice hysteresis, run the cap
// feedback loop, and apply the resulting per-domain states. slices must be
// in ascending slot order; an empty list parks every domain at the floor
// (a zero-tenant GPU burns only throttled idle power). Deterministic: all
// inputs are simulation state, all iteration is index-ordered.
func (g *Governor) Step(cycle uint64, slices []Slice) {
	m := g.m
	maxSM := len(m.cfg.SMStates) - 1
	maxCh := len(m.cfg.HBMStates) - 1
	g.stepCap(cycle)

	// Efficiency pass: per-slice hysteresis toward the classification.
	for i := range slices {
		s := &slices[i]
		st := &g.slots[s.Slot]
		if st.gen != s.Gen {
			*st = slotGov{gen: s.Gen}
		}
		limSM := maxSM
		if s.LC {
			limSM = min(g.cfg.LCMaxStep, maxSM)
		}
		if s.MemDegree >= g.cfg.MemHigh {
			st.memStreak++
		} else {
			st.memStreak = 0
		}
		if s.MemDegree <= g.cfg.MemLow {
			st.upStreak++
		} else {
			st.upStreak = 0
		}
		if st.hold > 0 {
			st.hold--
		} else if st.memStreak >= g.cfg.StreakEpochs && st.smState < limSM {
			st.smState++
			st.hold = g.cfg.HoldEpochs
			st.memStreak = 0
		} else if st.upStreak >= g.cfg.StreakEpochs && st.smState > 0 {
			st.smState--
			st.hold = g.cfg.HoldEpochs
			st.upStreak = 0
		}
		if st.smState > limSM {
			// An LC tenant replaced a BE one mid-flight or the limit
			// tightened; recover immediately.
			st.smState = limSM
		}
		// Channels: the mirror image. LC slices keep nominal bandwidth.
		limCh := maxCh
		if s.LC {
			limCh = 0
		}
		if s.MemDegree <= g.cfg.ChanLow {
			st.dnChan++
		} else {
			st.dnChan = 0
		}
		if s.MemDegree >= g.cfg.ChanHigh {
			st.upChan++
		} else {
			st.upChan = 0
		}
		if st.holdChan > 0 {
			st.holdChan--
		} else if st.dnChan >= g.cfg.StreakEpochs && st.chState < limCh {
			st.chState++
			st.holdChan = g.cfg.HoldEpochs
			st.dnChan = 0
		} else if st.upChan >= g.cfg.StreakEpochs && st.chState > 0 {
			st.chState--
			st.holdChan = g.cfg.HoldEpochs
			st.upChan = 0
		}
		if st.chState > limCh {
			st.chState = limCh
		}
	}

	// Resolve per-domain desired states: unowned domains park at the
	// floor; shared domains take the fastest owner's wish.
	for i := range g.desSM {
		g.desSM[i] = maxSM
	}
	for i := range g.desCh {
		g.desCh[i] = maxCh
	}
	beSM, beCh, lcSM, lcCh := g.capExtra(maxSM, maxCh)
	for i := range slices {
		s := &slices[i]
		st := &g.slots[s.Slot]
		wantSM, wantCh := st.smState, st.chState
		if s.LC {
			wantSM = min(wantSM+lcSM, maxSM)
			wantCh = min(wantCh+lcCh, maxCh)
		} else {
			wantSM = min(wantSM+beSM, maxSM)
			wantCh = min(wantCh+beCh, maxCh)
		}
		for _, d := range s.SMDomains {
			if wantSM < g.desSM[d] {
				g.desSM[d] = wantSM
			}
		}
		for _, c := range s.Channels {
			if wantCh < g.desCh[c] {
				g.desCh[c] = wantCh
			}
		}
	}
	floorSM := min(g.floorSM, maxSM)
	floorCh := min(g.floorCh, maxCh)
	for d, want := range g.desSM {
		if want < floorSM {
			want = floorSM
		}
		m.SetSMState(cycle, d, want)
	}
	for c, want := range g.desCh {
		if want < floorCh {
			want = floorCh
		}
		m.SetChannelState(cycle, c, want)
	}
}

// capExtra splits capDepth into extra down-steps: BE SMs, then BE channels,
// then LC SMs, then LC channels.
func (g *Governor) capExtra(maxSM, maxCh int) (beSM, beCh, lcSM, lcCh int) {
	d := g.capDepth
	beSM = min(d, maxSM)
	d -= beSM
	beCh = min(d, maxCh)
	d -= beCh
	lcSM = min(d, maxSM)
	d -= lcSM
	lcCh = min(d, maxCh)
	return
}

// stepCap runs the power-cap feedback loop: one depth step per epoch toward
// the budget, a hysteresis band so a borderline load does not oscillate, and
// a single clamp-enter trace event when the floor cannot satisfy the cap.
func (g *Governor) stepCap(cycle uint64) {
	if g.cfg.Cap <= 0 {
		g.capDepth = 0
		if g.clamped {
			g.clamped = false
			g.m.Emit(EventClampExit, cycle, 0, int64(g.capDepth), 0)
		}
		return
	}
	p := g.m.EpochPower(cycle)
	switch {
	case p > g.cfg.Cap:
		if g.capDepth < g.maxDepth() {
			g.capDepth++
		} else if !g.clamped {
			g.clamped = true
			g.m.Emit(EventClampEnter, cycle, 0, int64(g.capDepth), int64(g.cfg.Cap))
		}
	case p <= g.cfg.Cap*g.cfg.CapHysteresis && g.capDepth > 0:
		g.capDepth--
	}
	if g.clamped && p <= g.cfg.Cap {
		g.clamped = false
		g.m.Emit(EventClampExit, cycle, 0, int64(g.capDepth), int64(g.cfg.Cap))
	}
}
