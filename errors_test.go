package ugpu_test

import (
	"errors"
	"strings"
	"testing"

	"ugpu"
	"ugpu/internal/config"
)

func TestJobsOfUnknownAbbr(t *testing.T) {
	if _, err := ugpu.JobsOf("PVC", "NO-SUCH-BENCH"); err == nil {
		t.Fatal("JobsOf accepted an unknown benchmark abbreviation")
	} else if !strings.Contains(err.Error(), "NO-SUCH-BENCH") {
		t.Errorf("error %q does not name the unknown abbreviation", err)
	}
	jobs, err := ugpu.JobsOf("PVC", "DXTC")
	if err != nil {
		t.Fatalf("JobsOf on valid abbrs: %v", err)
	}
	if len(jobs) != 2 {
		t.Fatalf("JobsOf returned %d jobs, want 2", len(jobs))
	}
}

func TestNewClusterRejectsBadShapes(t *testing.T) {
	cfg := ugpu.DefaultConfig()
	cases := []struct {
		name      string
		gpus, per int
	}{
		{"zero GPUs", 0, 2},
		{"negative GPUs", -1, 2},
		{"zero tenants", 4, 0},
		{"tenants exceed channel groups", 1, cfg.ChannelGroups() + 1},
	}
	for _, c := range cases {
		if _, err := ugpu.NewCluster(cfg, c.gpus, c.per); err == nil {
			t.Errorf("%s: NewCluster(%d, %d) accepted invalid shape", c.name, c.gpus, c.per)
		}
	}
	if _, err := ugpu.NewCluster(cfg, 4, 2); err != nil {
		t.Errorf("NewCluster rejected a valid shape: %v", err)
	}
}

func TestNewClusterValidatesConfig(t *testing.T) {
	cfg := ugpu.DefaultConfig()
	cfg.NumSMs = -1
	_, err := ugpu.NewCluster(cfg, 2, 2)
	var fe *config.FieldError
	if !errors.As(err, &fe) {
		t.Fatalf("NewCluster on broken config = %v, want *config.FieldError", err)
	}
	if fe.Field != "NumSMs" {
		t.Errorf("FieldError names %q, want NumSMs", fe.Field)
	}

	cfg = ugpu.DefaultConfig()
	cfg.WatchdogCycles = -5
	_, err = ugpu.NewCluster(cfg, 2, 2)
	if !errors.As(err, &fe) || fe.Field != "WatchdogCycles" {
		t.Errorf("negative watchdog window detected as %v, want FieldError on WatchdogCycles", err)
	}
}
