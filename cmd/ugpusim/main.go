// Command ugpusim runs one multi-program workload mix on the simulated GPU
// under a chosen partitioning policy and reports per-application IPC,
// STP/ANTT, reallocation activity, and the energy breakdown.
//
// Usage:
//
//	ugpusim -apps PVC,DXTC -policy ugpu [-cycles 1000000] [-epoch 100000]
//	        [-scale 16] [-seed 1] [-check]
//
// Policies: ugpu, ugpu-ori, ugpu-soft, bp, bp-bs, bp-sb, mps, cd-search.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ugpu"
)

func main() {
	var (
		apps   = flag.String("apps", "PVC,DXTC", "comma-separated benchmark abbreviations")
		policy = flag.String("policy", "ugpu", "partitioning policy")
		cycles = flag.Int("cycles", 0, "simulated GPU cycles (default from config)")
		epochC = flag.Int("epoch", 0, "epoch length in cycles")
		scale  = flag.Int("scale", 16, "footprint divisor (DESIGN.md scaling)")
		seed   = flag.Int64("seed", 1, "workload seed")
		check  = flag.Bool("check", false, "verify page content tags on sampled reads")
		chans  = flag.Bool("chanstats", false, "print per-channel DRAM utilization after the run")
		list   = flag.Bool("list", false, "list benchmarks and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("Table 2 benchmarks:")
		for _, b := range ugpu.Benchmarks() {
			fmt.Printf("  %-9s %-26s %-14v MPKI=%-6.2f footprint=%dMB\n",
				b.Abbr, b.Name, b.Class, b.TableMPKI, b.FootprintMB)
		}
		fmt.Println("AI workloads:")
		for _, b := range ugpu.AIBenchmarks() {
			fmt.Printf("  %-9s %-26s kernels=%d footprint=%dMB\n", b.Abbr, b.Name, len(b.Kernels), b.FootprintMB)
		}
		return
	}

	cfg := ugpu.DefaultConfig()
	if *cycles > 0 {
		cfg.MaxCycles = *cycles
	}
	if *epochC > 0 {
		cfg.EpochCycles = *epochC
	}
	cfg.Seed = *seed

	mix, err := ugpu.MixOf(strings.Split(*apps, ",")...)
	fail(err)
	pol, err := ugpu.PolicyByName(*policy, cfg)
	fail(err)
	pol = ugpu.WithOptions(pol, func(o *ugpu.Options) {
		o.FootprintScale = *scale
		o.CheckReads = *check
	})

	fmt.Printf("mix %s under %s for %d cycles (epoch %d)\n", mix.Name, pol.Name(), cfg.MaxCycles, cfg.EpochCycles)
	sim, err := ugpu.NewSimulation(cfg, pol, mix)
	fail(err)
	res, err := sim.Run()
	fail(err)

	alone := ugpu.NewAloneIPC(cfg, pol.Options())
	ref, err := alone.Table(mix)
	fail(err)
	stp, antt := ugpu.Score(res, ref)

	fmt.Printf("\nper-application results:\n")
	for i, a := range res.Apps {
		fmt.Printf("  %-9s IPC=%8.2f  alone=%8.2f  NP=%.3f\n", a.Abbr, a.IPC, ref[i], ugpu.NP(a.IPC, ref[i]))
	}
	fmt.Printf("\nSTP  = %.3f (higher is better, max %d)\n", stp, len(res.Apps))
	fmt.Printf("ANTT = %.3f (lower is better, min 1)\n", antt)
	fmt.Printf("\nreallocations=%d  page migrations=%d (fault-driven %d)\n",
		res.Reallocations, res.PageMigrations, res.FaultMigrations)
	fmt.Printf("reallocation overhead: mean %.1f%% of epoch, worst %.1f%%\n",
		100*res.MigFracMean, 100*res.MigFracWorst)

	e := ugpu.DefaultEnergy().Energy(cfg, res)
	fmt.Printf("energy: core %.0f, HBM %.0f (%.1f%%), migration share %.0f\n",
		e.Core, e.HBM, 100*e.MemFraction(), e.Migration)

	if *chans {
		fmt.Printf("\nper-channel DRAM utilization (data-bus busy fraction):\n")
		hbm := sim.G.HBM()
		for st := 0; st < cfg.NumStacks; st++ {
			fmt.Printf("  stack %d:", st)
			for c := 0; c < cfg.ChannelsPerStack; c++ {
				s := hbm.ChannelStatsSnapshot(st*cfg.ChannelsPerStack + c)
				fmt.Printf(" %5.1f%%", 100*float64(s.BusyCycles)/float64(res.Cycles))
			}
			fmt.Println()
		}
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ugpusim:", err)
		os.Exit(1)
	}
}
