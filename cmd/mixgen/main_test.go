package main

import (
	"strings"
	"testing"
)

func TestMixesForKnownKinds(t *testing.T) {
	// The randomized families have fixed default counts; the table-driven
	// families just need to be non-empty (their sizes track Table 2).
	for kind, want := range map[string]int{"4": 20, "8": 200} {
		mixes, err := mixesFor(kind, 0, 11)
		if err != nil {
			t.Errorf("mixesFor(%q): %v", kind, err)
			continue
		}
		if len(mixes) != want {
			t.Errorf("mixesFor(%q) = %d mixes, want %d", kind, len(mixes), want)
		}
	}
	for _, kind := range []string{"hetero", "homo", "all"} {
		mixes, err := mixesFor(kind, 0, 11)
		if err != nil || len(mixes) == 0 {
			t.Errorf("mixesFor(%q) = %d mixes, %v", kind, len(mixes), err)
		}
	}
	if mixes, err := mixesFor("ai", 0, 0); err != nil || len(mixes) == 0 {
		t.Errorf("mixesFor(ai) = %d mixes, %v", len(mixes), err)
	}
}

func TestMixesForLimit(t *testing.T) {
	mixes, err := mixesFor("all", 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(mixes) != 7 {
		t.Fatalf("limit 7 returned %d mixes", len(mixes))
	}
}

func TestMixesForUnknownKind(t *testing.T) {
	if _, err := mixesFor("bogus", 0, 0); err == nil {
		t.Fatal("unknown kind accepted")
	} else if !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("error %q does not name the bad kind", err)
	}
}
