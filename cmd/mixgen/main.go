// Command mixgen lists the multi-program workload mixes of the UGPU
// evaluation (Section 5): the 105 two-program mixes (50 heterogeneous + 55
// homogeneous), the 4-/8-program mixes, and the AI mixes.
//
// Usage:
//
//	mixgen [-kind hetero|homo|all|4|8|ai] [-n N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"

	"ugpu"
)

func main() {
	var (
		kind = flag.String("kind", "all", "mix family: hetero, homo, all, 4, 8, ai")
		n    = flag.Int("n", 0, "limit (0 = family default)")
		seed = flag.Int64("seed", 11, "seed for randomized families (4/8)")
	)
	flag.Parse()

	var mixes []ugpu.Mix
	switch *kind {
	case "hetero":
		mixes = ugpu.HeterogeneousMixes(*n)
	case "homo":
		mixes = ugpu.HomogeneousMixes(*n)
	case "all":
		mixes = ugpu.AllMixes()
		if *n > 0 && *n < len(mixes) {
			mixes = mixes[:*n]
		}
	case "4":
		c := *n
		if c <= 0 {
			c = 20
		}
		mixes = ugpu.FourProgramMixes(c, *seed)
	case "8":
		c := *n
		if c <= 0 {
			c = 200
		}
		mixes = ugpu.EightProgramMixes(c, *seed)
	case "ai":
		mixes = ugpu.AIMixes()
		if *n > 0 && *n < len(mixes) {
			mixes = mixes[:*n]
		}
	default:
		fmt.Fprintf(os.Stderr, "mixgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	for _, m := range mixes {
		tag := "homogeneous"
		if m.Hetero {
			tag = "heterogeneous"
		}
		fmt.Printf("%-40s %-14s %d apps\n", m.Name, tag, len(m.Apps))
	}
	fmt.Fprintf(os.Stderr, "%d mixes\n", len(mixes))
}
