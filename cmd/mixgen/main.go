// Command mixgen lists the multi-program workload mixes of the UGPU
// evaluation (Section 5): the 105 two-program mixes (50 heterogeneous + 55
// homogeneous), the 4-/8-program mixes, and the AI mixes.
//
// Usage:
//
//	mixgen [-kind hetero|homo|all|4|8|ai] [-n N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"

	"ugpu"
)

// mixesFor resolves one mix family. An unknown kind is an error, so main
// can print usage and exit non-zero.
func mixesFor(kind string, n int, seed int64) ([]ugpu.Mix, error) {
	switch kind {
	case "hetero":
		return ugpu.HeterogeneousMixes(n), nil
	case "homo":
		return ugpu.HomogeneousMixes(n), nil
	case "all":
		mixes := ugpu.AllMixes()
		if n > 0 && n < len(mixes) {
			mixes = mixes[:n]
		}
		return mixes, nil
	case "4":
		if n <= 0 {
			n = 20
		}
		return ugpu.FourProgramMixes(n, seed), nil
	case "8":
		if n <= 0 {
			n = 200
		}
		return ugpu.EightProgramMixes(n, seed), nil
	case "ai":
		mixes := ugpu.AIMixes()
		if n > 0 && n < len(mixes) {
			mixes = mixes[:n]
		}
		return mixes, nil
	}
	return nil, fmt.Errorf("unknown kind %q (want hetero, homo, all, 4, 8, or ai)", kind)
}

func main() {
	var (
		kind = flag.String("kind", "all", "mix family: hetero, homo, all, 4, 8, ai")
		n    = flag.Int("n", 0, "limit (0 = family default)")
		seed = flag.Int64("seed", 11, "seed for randomized families (4/8)")
	)
	flag.Parse()

	mixes, err := mixesFor(*kind, *n, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mixgen: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	for _, m := range mixes {
		tag := "homogeneous"
		if m.Hetero {
			tag = "heterogeneous"
		}
		fmt.Printf("%-40s %-14s %d apps\n", m.Name, tag, len(m.Apps))
	}
	fmt.Fprintf(os.Stderr, "%d mixes\n", len(mixes))
}
