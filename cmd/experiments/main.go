// Command experiments regenerates the tables and figures of the UGPU
// paper's evaluation on the simulated GPU.
//
// Usage:
//
//	experiments [-fig all|table2|2|3|4|10|11|12a|12b|13|14|15|16|micro|pagesize]
//	            [-cycles N] [-epoch N] [-mixes N] [-scale N] [-v]
//
// Results reproduce the paper's shapes, not absolute numbers; see
// EXPERIMENTS.md for the recorded comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ugpu/internal/experiments"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "which figure to regenerate (comma-separated ids or 'all')")
		cycles  = flag.Int("cycles", 0, "simulated cycles per run (default: experiment suite default)")
		epoch   = flag.Int("epoch", 0, "epoch length in cycles")
		mixes   = flag.Int("mixes", 0, "mixes per sweep")
		scale   = flag.Int("scale", 0, "footprint divisor")
		verbose = flag.Bool("v", false, "log per-run progress")
	)
	flag.Parse()

	opt := experiments.Default()
	if *cycles > 0 {
		opt.Cfg.MaxCycles = *cycles
	}
	if *epoch > 0 {
		opt.Cfg.EpochCycles = *epoch
	}
	if *mixes > 0 {
		opt.Mixes = *mixes
	}
	if *scale > 0 {
		opt.FootprintScale = *scale
	}
	if *verbose {
		opt.Log = os.Stderr
	}

	type gen struct {
		id  string
		run func() (experiments.Figure, error)
	}
	gens := []gen{
		{"table2", opt.Table2Profiles},
		{"2", opt.Figure2},
		{"3", opt.Figure3},
		{"4", opt.Figure4},
		{"10", opt.Figure10},
		{"11", opt.Figure11},
		{"12a", opt.Figure12a},
		{"12b", opt.Figure12b},
		{"13", opt.Figure13},
		{"14", opt.Figure14},
		{"15", opt.Figure15},
		{"16", opt.Figure16},
		{"micro", opt.MigrationMicro},
		{"pagesize", opt.PageSizeSensitivity},
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*fig, ",") {
		want[strings.TrimSpace(strings.ToLower(id))] = true
	}
	ran := 0
	for _, g := range gens {
		if !want["all"] && !want[g.id] {
			continue
		}
		start := time.Now()
		f, err := g.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", g.id, err)
			os.Exit(1)
		}
		f.Format(os.Stdout)
		if *verbose {
			fmt.Fprintf(os.Stderr, "[%s done in %v]\n", g.id, time.Since(start).Round(time.Millisecond))
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown figure id %q\n", *fig)
		os.Exit(2)
	}
}
