// Command experiments regenerates the tables and figures of the UGPU
// paper's evaluation on the simulated GPU.
//
// Usage:
//
//	experiments [-fig all|table2|2|3|4|10|11|12a|12b|13|14|15|16|micro|pagesize|faults|serve|failover|power|gray]
//	            [-cycles N] [-epoch N] [-mixes N] [-scale N] [-parallel N]
//	            [-faults spec] [-fault-seed N] [-watchdog-timeout N]
//	            [-arrival-rate R] [-qos-mix F] [-serve-seed N]
//	            [-gray-faults spec] [-probe-epochs N]
//	            [-power-cap W] [-dvfs=false]
//	            [-digest] [-digest-every N] [-bisect A,B]
//	            [-trace] [-trace-out path] [-trace-filter spec] [-pprof prefix]
//	            [-bench-json path] [-v]
//
// Every figure is a sweep of independent simulations fanned out through
// internal/parallel; -parallel bounds the worker pool (0 = GOMAXPROCS,
// 1 = serial). Output is byte-identical for any worker count.
//
// -trace attaches a per-cell deterministic event tracer to the sweep
// figures (faults, serve) and writes the events as JSONL to -trace-out
// (default trace.jsonl; a .json extension converts to Chrome trace_event
// format loadable in chrome://tracing or Perfetto). -trace-filter selects
// categories and minimum severity ("migration,fault,sev=warn"); the JSONL
// is byte-identical at any -parallel count. -pprof writes
// <prefix>.cpu.pprof and <prefix>.mem.pprof runtime profiles.
//
// -digest records a per-epoch machine-state digest chain in every
// simulation (-digest-every N thins it to every Nth epoch) and appends the
// folded chain to the sweep figures' notes: two invocations that differ only
// in execution mode (-parallel count, -fastforward, -trace) must print the
// same digest, and `make digest-smoke` asserts exactly that. -bisect A,B
// localizes a divergence between two mode arms ('+'-joined tokens from ff,
// noff, trace, notrace): it binary-searches the two runs' digest chains for
// the first divergent epoch, then replays that epoch to name the first
// divergent component and cycle.
//
// -bench-json runs the selected figures twice (serial, then parallel),
// records wall-clock, allocation counts, and the hot-path micro-benchmark,
// and writes the comparison as JSON (see BENCH_parallel.json).
//
// Results reproduce the paper's shapes, not absolute numbers; see
// EXPERIMENTS.md for the recorded comparison.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"ugpu/internal/experiments"
	"ugpu/internal/fault"
	"ugpu/internal/trace"
)

// checkGraySpec validates the -gray-faults flag value before any figure
// runs; a malformed spec is a usage error (exit 2), not a runtime failure.
func checkGraySpec(spec string) error {
	if _, err := fault.ParseGraySpec(spec); err != nil {
		return fmt.Errorf("-gray-faults: %w", err)
	}
	return nil
}

// gen is one runnable figure generator.
type gen struct {
	id  string
	run func() (experiments.Figure, error)
}

// gensFor binds every figure generator to the given options. Bindings
// capture opt by value, so serial and parallel variants coexist.
func gensFor(opt experiments.Options) []gen {
	return []gen{
		{"table2", opt.Table2Profiles},
		{"2", opt.Figure2},
		{"3", opt.Figure3},
		{"4", opt.Figure4},
		{"10", opt.Figure10},
		{"11", opt.Figure11},
		{"12a", opt.Figure12a},
		{"12b", opt.Figure12b},
		{"13", opt.Figure13},
		{"14", opt.Figure14},
		{"15", opt.Figure15},
		{"16", opt.Figure16},
		{"micro", opt.MigrationMicro},
		{"pagesize", opt.PageSizeSensitivity},
		{"faults", opt.FaultSweep},
		{"serve", opt.ServeSweep},
		{"failover", opt.FailoverSweep},
		{"power", opt.PowerSweep},
		{"gray", opt.GraySweep},
	}
}

// figureIDs lists every runnable figure id (the -fig error message and its
// test read this, so the list can never drift from gensFor).
func figureIDs() []string {
	ids := make([]string, 0, 20)
	for _, g := range gensFor(experiments.Options{}) {
		ids = append(ids, g.id)
	}
	return ids
}

// generatorFor returns the generator for one figure id under opt.
func generatorFor(opt experiments.Options, id string) (func() (experiments.Figure, error), bool) {
	for _, g := range gensFor(opt) {
		if g.id == id {
			return g.run, true
		}
	}
	return nil, false
}

func main() {
	var (
		fig         = flag.String("fig", "all", "which figure to regenerate (comma-separated ids or 'all')")
		cycles      = flag.Int("cycles", 0, "simulated cycles per run (default: experiment suite default)")
		epoch       = flag.Int("epoch", 0, "epoch length in cycles")
		mixes       = flag.Int("mixes", 0, "mixes per sweep")
		scale       = flag.Int("scale", 0, "footprint divisor")
		parallelN   = flag.Int("parallel", 0, "sweep fan-out workers (0 = GOMAXPROCS, 1 = serial)")
		faults      = flag.String("faults", "", "custom fault spec for the faults figure (e.g. \"sm=2,group=1,mig=0.05\")")
		faultSeed   = flag.Int64("fault-seed", 1, "seed for the deterministic fault injector")
		watchdog    = flag.Int("watchdog-timeout", 0, "watchdog window in cycles (-1 disables; 0 keeps the config default)")
		arrRate     = flag.Float64("arrival-rate", 0, "serve/gray figures: single arrival rate in jobs per 100K cycles (0 = figure default)")
		powerCap    = flag.Float64("power-cap", 0, "power figure: cluster power budget in watts (0 = derive 85%/70% cap points from the baseline arm)")
		dvfs        = flag.Bool("dvfs", true, "power figure: include the DVFS-governed and capped arms (false = nominal baseline only)")
		qosMix      = flag.Float64("qos-mix", 0, "serve figure: latency-critical arrival fraction (0 = the 0.5 default)")
		serveSeed   = flag.Int64("serve-seed", 0, "serve figure: arrival-schedule seed (0 = seed 1)")
		gpuFaults   = flag.Int("gpu-faults", 0, "failover figure: whole-GPU crashes to inject (0 = the default 1)")
		grayFaults  = flag.String("gray-faults", "", "gray figure: degradation spec (e.g. \"gpus=1,sm=3,noc=0.005,window=0.25\"; empty = default)")
		probeEpochs = flag.Int("probe-epochs", 0, "gray figure: clean probe epochs before a quarantined GPU re-admits LC work (0 = the default 4)")
		ckptEvery   = flag.Int("checkpoint-every", 0, "failover figure: checkpoint interval in cycles (0 = 2 epochs)")
		brownout    = flag.Bool("brownout", true, "failover figure: include the tiered-brownout arm")
		traceOn     = flag.Bool("trace", false, "record deterministic event traces for the sweep figures (faults, serve)")
		traceOut    = flag.String("trace-out", "", "trace output path (implies -trace; default trace.jsonl; .json converts to Chrome trace_event)")
		traceFilter = flag.String("trace-filter", "", "trace category/severity filter, e.g. \"migration,fault,sev=warn\" (empty = everything)")
		fastForward = flag.Bool("fastforward", true, "event-driven fast-forward engine: skip provably-dead cycles and idle SMs (results are byte-identical either way)")
		noFastFwd   = flag.Bool("no-fastforward", false, "disable the fast-forward engine (same as -fastforward=false)")
		digestOn    = flag.Bool("digest", false, "record per-epoch machine-state digest chains and print them in sweep notes")
		digestEvery = flag.Int("digest-every", 0, "record a state digest every N epochs (implies -digest; 0 with -digest means every epoch)")
		bisect      = flag.String("bisect", "", "localize a state divergence between two mode arms, e.g. \"ff,noff\" or \"ff+trace,noff\" (tokens: ff, noff, trace, notrace)")
		pprofPrefix = flag.String("pprof", "", "write <prefix>.cpu.pprof and <prefix>.mem.pprof runtime profiles")
		benchJSON   = flag.String("bench-json", "", "write a serial-vs-parallel benchmark report to this path and exit")
		verbose     = flag.Bool("v", false, "log per-run progress")
	)
	flag.Parse()

	if err := checkGraySpec(*grayFaults); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	opt := experiments.Default()
	if *cycles > 0 {
		opt.Cfg.MaxCycles = *cycles
	}
	if *epoch > 0 {
		opt.Cfg.EpochCycles = *epoch
	}
	if *mixes > 0 {
		opt.Mixes = *mixes
	}
	if *scale > 0 {
		opt.FootprintScale = *scale
	}
	if *verbose {
		opt.Log = os.Stderr
	}
	opt.Parallel = *parallelN
	opt.FaultSpec = *faults
	opt.FaultSeed = *faultSeed
	opt.ArrivalRate = *arrRate
	opt.PowerCap = *powerCap
	opt.DVFS = *dvfs
	opt.QoSMix = *qosMix
	opt.ServeSeed = *serveSeed
	opt.GPUFaults = *gpuFaults
	opt.CheckpointEvery = *ckptEvery
	opt.Brownout = *brownout
	opt.GrayFaults = *grayFaults
	opt.ProbeEpochs = *probeEpochs
	opt.NoFastForward = *noFastFwd || !*fastForward
	switch {
	case *watchdog > 0:
		opt.Cfg.WatchdogCycles = *watchdog
	case *watchdog < 0:
		opt.Cfg.WatchdogCycles = 0
	}
	if *digestEvery > 0 {
		opt.Cfg.DigestEvery = *digestEvery
	} else if *digestOn {
		opt.Cfg.DigestEvery = 1
	}

	if *bisect != "" {
		a, b, err := experiments.ParseBisectSpec(*bisect)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(2)
		}
		res, err := opt.Bisect(a, b)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bisect: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(res)
		if !res.Agree {
			os.Exit(1)
		}
		return
	}

	// Tracing: the sweeps stream JSONL into an in-memory buffer (runs are
	// laptop-scale) which finish() writes to disk, converting to Chrome
	// trace_event format when the path ends in .json.
	tracePath := *traceOut
	if tracePath != "" {
		*traceOn = true
	} else if *traceOn {
		tracePath = "trace.jsonl"
	}
	var traceBuf bytes.Buffer
	if *traceOn {
		opt.Trace = true
		opt.TraceFilter = *traceFilter
		opt.TraceOut = &traceBuf
	}

	// Profiling: CPU from here to finish(); heap snapshot at finish().
	if *pprofPrefix != "" {
		cf, err := os.Create(*pprofPrefix + ".cpu.pprof")
		if err != nil {
			fmt.Fprintf(os.Stderr, "pprof: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			fmt.Fprintf(os.Stderr, "pprof: %v\n", err)
			os.Exit(1)
		}
	}

	// finish writes the deferred artifacts (trace file, profiles) before a
	// normal exit; error exits skip them.
	finish := func() {
		if *pprofPrefix != "" {
			pprof.StopCPUProfile()
			mf, err := os.Create(*pprofPrefix + ".mem.pprof")
			if err == nil {
				runtime.GC()
				err = pprof.WriteHeapProfile(mf)
				if cerr := mf.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "pprof: %v\n", err)
				os.Exit(1)
			}
		}
		if !*traceOn {
			return
		}
		f, err := os.Create(tracePath)
		if err == nil {
			if strings.HasSuffix(tracePath, ".json") {
				err = trace.JSONLToChrome(f, &traceBuf)
			} else {
				_, err = f.Write(traceBuf.Bytes())
			}
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", tracePath)
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*fig, ",") {
		want[strings.TrimSpace(strings.ToLower(id))] = true
	}

	if *benchJSON != "" {
		// Benchmark mode defaults to the Figure 10 and 14 sweeps (the golden
		// determinism pair) unless -fig picks a specific set.
		ids := []string{"10", "14"}
		if !want["all"] {
			ids = ids[:0]
			for _, g := range gensFor(opt) {
				if want[g.id] {
					ids = append(ids, g.id)
				}
			}
		}
		if err := runBench(opt, ids, *parallelN, *benchJSON); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		finish()
		return
	}

	ran := 0
	for _, g := range gensFor(opt) {
		if !want["all"] && !want[g.id] {
			continue
		}
		start := time.Now()
		f, err := g.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", g.id, err)
			os.Exit(1)
		}
		f.Format(os.Stdout)
		if *verbose {
			fmt.Fprintf(os.Stderr, "[%s done in %v]\n", g.id, time.Since(start).Round(time.Millisecond))
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown figure id %q (valid: %s, or all)\n",
			*fig, strings.Join(figureIDs(), ", "))
		os.Exit(2)
	}
	finish()
}
