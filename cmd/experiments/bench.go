package main

// Benchmark mode (-bench-json): times selected figure generators serially
// (Parallel=1) and with the fan-out pool, measures allocations, runs the
// hot-path micro-benchmark, and writes the results as JSON (the
// BENCH_parallel.json artifact recorded in the repo).

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"ugpu/internal/config"
	"ugpu/internal/experiments"
	"ugpu/internal/gpu"
	"ugpu/internal/workload"
)

// figBench records one figure's serial-vs-parallel comparison.
type figBench struct {
	ID              string  `json:"id"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
	SerialAllocs    uint64  `json:"serial_allocs"`
	ParallelAllocs  uint64  `json:"parallel_allocs"`
}

// hotPathBench records the single-simulation micro-benchmark.
type hotPathBench struct {
	Benchmark       string `json:"benchmark"`
	NsPerOp         int64  `json:"ns_per_op"`
	AllocsPerOp     int64  `json:"allocs_per_op"`
	BytesPerOp      int64  `json:"bytes_per_op"`
	SeedAllocsPerOp int64  `json:"seed_allocs_per_op"`
}

// benchReport is the BENCH_parallel.json schema.
type benchReport struct {
	GeneratedAt string       `json:"generated_at"`
	Cores       int          `json:"cores"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Workers     int          `json:"workers"`
	Note        string       `json:"note"`
	Figures     []figBench   `json:"figures"`
	HotPath     hotPathBench `json:"hot_path"`
}

// seedAllocsPerOp is BenchmarkSimulatorThroughput measured on the seed tree
// (before the event-wheel/pool/ring-buffer optimizations), kept as the
// regression reference.
const seedAllocsPerOp = 1_420_794

// measured runs fn and reports wall-clock plus the heap allocation count.
func measured(fn func() error) (time.Duration, uint64, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := fn()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return elapsed, after.Mallocs - before.Mallocs, err
}

// runBench executes the benchmark comparison over figIDs and writes the JSON
// report to path.
func runBench(opt experiments.Options, figIDs []string, workers int, path string) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	serialOpt := opt
	serialOpt.Parallel = 1
	parallelOpt := opt
	parallelOpt.Parallel = workers

	rep := benchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Cores:       runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Workers:     workers,
		Note: "speedup >= 1.8x is expected only with >= 2 cores; on a " +
			"single-core host serial and parallel wall-clock match within noise " +
			"(the determinism contract guarantees identical output either way)",
	}

	for _, id := range figIDs {
		serialGen, ok := generatorFor(serialOpt, id)
		if !ok {
			return fmt.Errorf("unknown figure id %q", id)
		}
		parallelGen, _ := generatorFor(parallelOpt, id)

		fb := figBench{ID: id}
		var err error
		d, allocs, err := measured(func() error { _, e := serialGen(); return e })
		if err != nil {
			return fmt.Errorf("figure %s (serial): %w", id, err)
		}
		fb.SerialSeconds, fb.SerialAllocs = d.Seconds(), allocs

		d, allocs, err = measured(func() error { _, e := parallelGen(); return e })
		if err != nil {
			return fmt.Errorf("figure %s (parallel): %w", id, err)
		}
		fb.ParallelSeconds, fb.ParallelAllocs = d.Seconds(), allocs
		if fb.ParallelSeconds > 0 {
			fb.Speedup = fb.SerialSeconds / fb.ParallelSeconds
		}
		rep.Figures = append(rep.Figures, fb)
		fmt.Fprintf(os.Stderr, "[bench %s: serial %.2fs, parallel(%d) %.2fs, speedup %.2fx]\n",
			id, fb.SerialSeconds, workers, fb.ParallelSeconds, fb.Speedup)
	}

	res := testing.Benchmark(benchSimulatorThroughput)
	rep.HotPath = hotPathBench{
		Benchmark:       "SimulatorThroughput (2-app 60k-cycle sim)",
		NsPerOp:         res.NsPerOp(),
		AllocsPerOp:     res.AllocsPerOp(),
		BytesPerOp:      res.AllocedBytesPerOp(),
		SeedAllocsPerOp: seedAllocsPerOp,
	}
	fmt.Fprintf(os.Stderr, "[bench hot path: %d allocs/op (seed %d)]\n",
		rep.HotPath.AllocsPerOp, seedAllocsPerOp)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

// benchSimulatorThroughput mirrors the internal/gpu benchmark of the same
// name: one full two-app 60k-cycle simulation per iteration.
func benchSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := config.Default()
		cfg.EpochCycles = 20_000
		cfg.MaxCycles = 60_000
		lbm, err := workload.ByAbbr("LBM")
		if err != nil {
			b.Fatal(err)
		}
		dxtc, err := workload.ByAbbr("DXTC")
		if err != nil {
			b.Fatal(err)
		}
		opt := gpu.DefaultOptions()
		opt.FootprintScale = 64
		g, err := gpu.New(cfg, []gpu.AppSpec{
			{Bench: lbm, SMs: 40, Groups: []int{0, 1, 2, 3}},
			{Bench: dxtc, SMs: 40, Groups: []int{4, 5, 6, 7}},
		}, opt)
		if err != nil {
			b.Fatal(err)
		}
		g.Run(uint64(cfg.MaxCycles))
	}
}
