package main

import (
	"strings"
	"testing"

	"ugpu/internal/experiments"
)

// TestFigureIDs pins the valid-figure list the unknown -fig error prints:
// every generator is named, the power figure is present, and there are no
// duplicate ids (a duplicate would make one figure unreachable by -fig).
func TestFigureIDs(t *testing.T) {
	ids := figureIDs()
	if len(ids) == 0 {
		t.Fatal("no figure ids")
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate figure id %q", id)
		}
		seen[id] = true
	}
	for _, want := range []string{"table2", "10", "faults", "serve", "failover", "power", "gray"} {
		if !seen[want] {
			t.Errorf("figure id %q missing from %v", want, ids)
		}
	}
	if msg := strings.Join(ids, ", "); !strings.Contains(msg, "power") {
		t.Errorf("error-message list %q does not mention power", msg)
	}
}

// TestGeneratorFor checks the lookup both ways: every listed id resolves,
// and a bogus id does not (main exits 2 with the valid list in that case).
func TestGeneratorFor(t *testing.T) {
	opt := experiments.Default()
	for _, id := range figureIDs() {
		if _, ok := generatorFor(opt, id); !ok {
			t.Errorf("generatorFor(%q) = false, want true", id)
		}
	}
	if _, ok := generatorFor(opt, "bogus"); ok {
		t.Error("generatorFor(bogus) resolved")
	}
}

// TestCheckGraySpec pins the -gray-faults usage-error path: a malformed
// spec is rejected before any figure runs (main prints the grammar and
// exits 2), while the empty default and a well-formed spec pass.
func TestCheckGraySpec(t *testing.T) {
	for _, ok := range []string{"", "none", "gpus=1", "gpus=2,sm=3,hbm=1,noc=0.005,window=0.25"} {
		if err := checkGraySpec(ok); err != nil {
			t.Errorf("checkGraySpec(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"noc=2", "gpus=-1", "window=0", "bogus=1", "gpus"} {
		err := checkGraySpec(bad)
		if err == nil {
			t.Errorf("checkGraySpec(%q) = nil, want error", bad)
			continue
		}
		if !strings.Contains(err.Error(), "-gray-faults") {
			t.Errorf("checkGraySpec(%q) error %q does not name the flag", bad, err)
		}
		if !strings.Contains(err.Error(), "grammar:") {
			t.Errorf("checkGraySpec(%q) error %q does not cite the grammar", bad, err)
		}
	}
}
