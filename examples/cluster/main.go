// Cluster: the multi-GPU cloud extension (Section 6.6). Eight tenants
// arrive at a four-GPU cluster. The example compares two operating points:
// tenants packed in arrival order onto balanced (MIG-like) partitions, and
// class-aware placement (each GPU gets a memory-bound + compute-bound pair)
// with UGPU re-partitioning each GPU into unbalanced slices.
package main

import (
	"fmt"
	"log"

	"ugpu"
)

func main() {
	cfg := ugpu.DefaultConfig()
	cfg.MaxCycles = 200_000
	cfg.EpochCycles = 40_000

	cl, err := ugpu.NewCluster(cfg, 4, 2)
	if err != nil {
		log.Fatal(err)
	}
	// Arrival order: memory-bound jobs burst in first (a common pattern —
	// a batch of HPC jobs), then compute-heavy ones.
	jobs, err := ugpu.JobsOf("PVC", "LBM", "EULER3D", "SC", "DXTC", "CP", "HOTSPOT", "MRI-Q")
	if err != nil {
		log.Fatal(err)
	}
	alone := ugpu.NewAloneIPC(cfg, ugpu.DefaultOptions())

	type scenario struct {
		name      string
		placement ugpu.Placement
		policy    func() ugpu.Policy
	}
	scenarios := []scenario{
		{"in-order + BP", ugpu.PlaceInOrder, func() ugpu.Policy { return ugpu.NewBP() }},
		{"class-aware + BP", ugpu.PlaceClassAware, func() ugpu.Policy { return ugpu.NewBP() }},
		{"class-aware + UGPU", ugpu.PlaceClassAware, func() ugpu.Policy { return ugpu.NewUGPU(cfg) }},
	}
	var first float64
	for _, sc := range scenarios {
		rep, err := cl.Run(jobs, sc.placement, sc.policy, alone)
		if err != nil {
			log.Fatal(err)
		}
		if first == 0 {
			first = rep.ClusterSTP
		}
		fmt.Printf("%-20s cluster STP=%6.3f  mean ANTT=%6.3f  (%+.1f%% vs baseline)\n",
			sc.name, rep.ClusterSTP, rep.MeanANTT, 100*(rep.ClusterSTP/first-1))
		for _, g := range rep.PerGPU {
			fmt.Printf("    %-24s STP=%.3f\n", g.Mix.Name, g.STP)
		}
	}
}
