// Gray failure: a GPU gets slow without dying. Four backend GPUs serve one
// seeded arrival stream; mid-run one of them is degraded — forced low
// P-states and an elevated NoC drop rate — while still answering offers and
// completing jobs, the failure mode fail-stop failover cannot see. The
// example replays the *same* stream and the *same* degradation window three
// ways — no mitigation, conviction treated as a crash, and the full
// quarantine pipeline (detect by peer-median progress, drain LC with live
// progress, probe, re-admit) — and prints the resilience accounting:
// detection latency, false positives, quarantined GPU-cycles, saved work,
// and what quarantine buys the latency-critical tail.
package main

import (
	"fmt"
	"log"

	"ugpu"
)

func main() {
	cfg := ugpu.DefaultConfig()
	cfg.MaxCycles = 200_000 // serving horizon
	cfg.EpochCycles = 5_000 // scheduling quantum; the scorer samples per epoch

	var pool []ugpu.Benchmark
	for _, abbr := range []string{"DXTC", "HOTSPOT", "PVC", "LBM"} {
		b, err := ugpu.BenchmarkByName(abbr)
		if err != nil {
			log.Fatal(err)
		}
		pool = append(pool, b)
	}

	// Moderate load: the three survivors must have headroom to absorb the
	// drained LC work — run the stream much hotter and the drain genuinely
	// crushes a healthy survivor, whose collapsed progress ratio then reads
	// as a second gray failure (see the figure comment in
	// internal/experiments/gray.go).
	spec := ugpu.ArrivalSpec{
		Horizon:    160_000,
		MeanGap:    3_500,
		LCFraction: 0.5,
		MinLen:     4_000,
		MaxLen:     10_000,
		Benchmarks: pool,
	}
	// The degradation needs the DVFS ladder to bite: P-state floors are
	// applied through the power governor.
	opt := ugpu.DefaultOptions()
	opt.Power = &ugpu.PowerConfig{}
	alone := ugpu.NewAloneIPC(cfg, opt)

	// One seeded degradation window in the middle of the run, shared by
	// every arm — the figure's severity: SM floor 3 (quarter issue rate),
	// half-rate HBM bursts, a 1% NoC drop, over 0.35 of the horizon.
	gspec, err := ugpu.ParseGraySpec("gpus=1,sm=3,hbm=2,noc=0.01,window=0.35")
	if err != nil {
		log.Fatal(err)
	}
	plan := ugpu.PlanGrayFaults(42, 4, gspec, uint64(cfg.MaxCycles))
	fmt.Printf("gray schedule: GPU %d degraded over [%d, %d)\n\n",
		plan[0].GPU, plan[0].Start, plan[0].End)

	arms := []struct {
		name    string
		health  bool
		asCrash bool
	}{
		{"ignore", false, false},
		{"treat-as-crash", true, true},
		{"quarantine", true, false},
	}
	fmt.Printf("%-15s %8s %6s %4s %4s %8s %7s %6s %8s %9s %7s\n",
		"arm", "arrived", "done", "det", "fp", "latency", "quar", "saved", "lcAvail", "lcGoodput", "p99")
	for _, arm := range arms {
		ccfg := ugpu.ClusterServeConfig{
			GPUs:     4,
			Sim:      cfg,
			Opt:      opt,
			Arrivals: spec,
			Seed:     42,
			// Deep queues: a gray GPU answers offers normally, so dispatch
			// keeps feeding it and queued LC work rots behind the slow
			// residents — the hiding behavior the scorer exists to catch.
			QueueCap: 6,
			GrayPlan: plan,
			Alone:    alone,
		}
		if arm.health {
			ccfg.Health = &ugpu.HealthConfig{}
			ccfg.GrayAsCrash = arm.asCrash
		}
		fr, err := ugpu.NewClusterFrontend(ccfg)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := fr.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s %8d %6d %4d %4d %8.1f %7d %6.0f %8.3f %9.3f %7.2f\n",
			arm.name, rep.Arrived, rep.Completed,
			rep.SLO.GrayDetected, rep.SLO.GrayFalsePositives, rep.SLO.GrayDetectEpochs,
			rep.SLO.QuarantinedGPUCycles, rep.SLO.GraySavedWork,
			rep.SLO.LCAvailability, rep.SLO.LCGoodput, rep.SLO.P99)
	}

	fmt.Println("\nSame seed, same stream, same sick GPU: only the response differs.")
	fmt.Println("Ignoring the gray window lets latency-critical jobs crawl on the")
	fmt.Println("victim; killing it on conviction rolls progress back to checkpoints")
	fmt.Println("and pays crash retries. Quarantine drains LC with live progress —")
	fmt.Println("nothing rolls back — keeps best-effort work on the sick device, and")
	fmt.Println("re-admits it after clean probe epochs. The full comparison is")
	fmt.Println("`go run ./cmd/experiments -fig gray` (EXPERIMENTS.md).")
}
