// QoS: a priority tenant with a normalized-progress guarantee (Section 6.7).
// The high-priority compute-bound tenant must keep at least 75% of its solo
// performance; the provider wants to squeeze as much throughput as possible
// out of the co-located low-priority tenant. The example compares MPS
// (shared memory, no isolation), QoS-aware BP, and UGPU-QoS.
package main

import (
	"fmt"
	"log"

	"ugpu"
)

func main() {
	const target = 0.75

	cfg := ugpu.DefaultConfig()
	cfg.MaxCycles = 300_000
	cfg.EpochCycles = 50_000

	// High-priority app first: DXTC (compute-bound, the paper's choice);
	// low priority: LBM (memory-bound).
	mix, err := ugpu.MixOf("DXTC", "LBM")
	if err != nil {
		log.Fatal(err)
	}
	alone := ugpu.NewAloneIPC(cfg, ugpu.DefaultOptions())
	ref, err := alone.Table(mix)
	if err != nil {
		log.Fatal(err)
	}

	policies := []ugpu.Policy{
		ugpu.NewMPSQoS(cfg),
		ugpu.NewBPQoS(),
		ugpu.NewUGPUQoS(cfg, ref, target),
	}
	fmt.Printf("QoS target: high-priority %s must keep NP >= %.2f\n\n", mix.Apps[0].Abbr, target)
	fmt.Printf("%-10s %10s %10s %10s %8s\n", "policy", "hp NP", "lp NP", "STP", "meets?")
	for _, pol := range policies {
		res, err := ugpu.Run(cfg, pol, mix)
		if err != nil {
			log.Fatal(err)
		}
		np0 := ugpu.NP(res.Apps[0].IPC, ref[0])
		np1 := ugpu.NP(res.Apps[1].IPC, ref[1])
		stp, _ := ugpu.Score(res, ref)
		ok := "yes"
		if np0 < target {
			ok = "NO"
		}
		fmt.Printf("%-10s %10.3f %10.3f %10.3f %8s\n", pol.Name(), np0, np1, stp, ok)
	}
	fmt.Println("\nBP and UGPU guarantee the target through slice isolation; UGPU")
	fmt.Println("additionally hands the high-priority app's spare memory channels to")
	fmt.Println("the low-priority tenant, raising system throughput.")
}
