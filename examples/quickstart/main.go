// Quickstart: co-run a memory-bound and a compute-bound application on one
// simulated GPU, first under the balanced partition (BP, the MIG-like
// baseline) and then under UGPU's demand-aware unbalanced slices, and
// compare system throughput.
package main

import (
	"fmt"
	"log"

	"ugpu"
)

func main() {
	cfg := ugpu.DefaultConfig()
	cfg.MaxCycles = 300_000 // keep the demo quick; default is 1M
	cfg.EpochCycles = 50_000

	// PVC streams gigabytes (memory-bound); DXTC barely touches memory
	// (compute-bound) — Table 2 of the paper.
	mix, err := ugpu.MixOf("PVC", "DXTC")
	if err != nil {
		log.Fatal(err)
	}

	// Solo references for STP/ANTT (Equations 3-4).
	alone := ugpu.NewAloneIPC(cfg, ugpu.DefaultOptions())
	ref, err := alone.Table(mix)
	if err != nil {
		log.Fatal(err)
	}

	for _, pol := range []ugpu.Policy{ugpu.NewBP(), ugpu.NewUGPU(cfg)} {
		res, err := ugpu.Run(cfg, pol, mix)
		if err != nil {
			log.Fatal(err)
		}
		stp, antt := ugpu.Score(res, ref)
		fmt.Printf("%-6s STP=%.3f ANTT=%.3f", pol.Name(), stp, antt)
		for i, a := range res.Apps {
			fmt.Printf("  %s IPC=%.1f (solo %.1f)", a.Abbr, a.IPC, ref[i])
		}
		fmt.Printf("  [%d reallocations, %d pages migrated]\n", res.Reallocations, res.PageMigrations)
		if pol.Name() == "UGPU" {
			fmt.Printf("       final partition:")
			for i, t := range res.Final {
				fmt.Printf("  %s=%dSM/%dgroups", res.Apps[i].Abbr, t.SMs, t.Groups)
			}
			fmt.Println()
		}
	}
}
