// Cloudmix: a cloud-consolidation scenario. Four tenants with very
// different characteristics (two bandwidth-hungry HPC codes, two
// compute-heavy kernels) share one physical GPU. The example compares the
// balanced MIG-like partition against UGPU's dynamically constructed
// unbalanced slices, and prints how the partition evolved — the Section 6.5
// four-program experiment in miniature.
package main

import (
	"fmt"
	"log"

	"ugpu"
)

func main() {
	cfg := ugpu.DefaultConfig()
	cfg.MaxCycles = 400_000
	cfg.EpochCycles = 50_000

	// Tenants: LBM and PVC saturate memory bandwidth; DXTC and CP want SMs.
	mix, err := ugpu.MixOf("LBM", "PVC", "DXTC", "CP")
	if err != nil {
		log.Fatal(err)
	}

	alone := ugpu.NewAloneIPC(cfg, ugpu.DefaultOptions())
	ref, err := alone.Table(mix)
	if err != nil {
		log.Fatal(err)
	}

	type row struct {
		name string
		res  ugpu.Result
	}
	var rows []row
	for _, pol := range []ugpu.Policy{ugpu.NewBP(), ugpu.NewUGPU(cfg)} {
		res, err := ugpu.Run(cfg, pol, mix)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{pol.Name(), res})
	}

	fmt.Printf("%-8s", "tenant")
	for _, r := range rows {
		fmt.Printf(" %12s", r.name+" IPC")
	}
	fmt.Printf(" %12s\n", "solo IPC")
	for i, b := range mix.Apps {
		fmt.Printf("%-8s", b.Abbr)
		for _, r := range rows {
			fmt.Printf(" %12.1f", r.res.Apps[i].IPC)
		}
		fmt.Printf(" %12.1f\n", ref[i])
	}
	fmt.Println()
	for _, r := range rows {
		stp, antt := ugpu.Score(r.res, ref)
		fmt.Printf("%-8s STP=%.3f ANTT=%.3f reallocations=%d migrated pages=%d\n",
			r.name, stp, antt, r.res.Reallocations, r.res.PageMigrations)
	}

	ug := rows[len(rows)-1].res
	fmt.Println("\nUGPU final slices (SMs / channel groups of 4 channels each):")
	for i, t := range ug.Final {
		fmt.Printf("  %-8s %2d SMs, %d groups (%d memory channels)\n",
			mix.Apps[i].Abbr, t.SMs, t.Groups, t.Groups*4)
	}
	bp, _ := ugpu.Score(rows[0].res, ref)
	us, _ := ugpu.Score(ug, ref)
	fmt.Printf("\nsystem throughput gain over the balanced partition: %+.1f%%\n", 100*(us/bp-1))
}
