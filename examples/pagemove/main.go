// PageMove: the Section 4 mechanism in isolation. The example measures how
// long migrating one 4 KB page between memory channels takes under the
// three mechanisms the paper compares — PageMove's parallel page migration
// mode (PPMM, MIGRATION commands through idle TSVs), plain READ/WRITE
// copies within a stack (UGPU-Soft), and cross-stack copies through the
// memory-controller path (UGPU-Ori) — then shows the end-to-end effect of a
// channel reallocation under each mode.
package main

import (
	"fmt"
	"log"

	"ugpu"
)

func main() {
	// Part 1: the Section 4.5 microbenchmark on an idle memory system.
	exp := ugpu.DefaultExperiments()
	fig, err := exp.MigrationMicro()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("single-page migration latency (idle memory system):")
	for i, label := range fig.Series[0].Labels {
		fmt.Printf("  %-12s %6.0f cycles\n", label, fig.Series[0].Values[i])
	}
	fmt.Println("  (paper: 32 MIGRATION commands/page, ~40 cycles each, 16 in parallel)")

	// Part 2: end-to-end — a memory-channel reallocation mid-run under each
	// migration mechanism. The same demand-aware policy runs; only the
	// migration hardware differs.
	cfg := ugpu.DefaultConfig()
	cfg.MaxCycles = 250_000
	cfg.EpochCycles = 50_000
	mix, err := ugpu.MixOf("PVC", "DXTC")
	if err != nil {
		log.Fatal(err)
	}
	alone := ugpu.NewAloneIPC(cfg, ugpu.DefaultOptions())
	ref, err := alone.Table(mix)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nend-to-end with a dynamic repartition (same policy, different hardware):")
	for _, pol := range []ugpu.Policy{
		ugpu.NewUGPUOri(cfg),  // traditional migration, whole-footprint reshuffle
		ugpu.NewUGPUSoft(cfg), // customized mapping only
		ugpu.NewUGPU(cfg),     // full PageMove
	} {
		res, err := ugpu.Run(cfg, pol, mix)
		if err != nil {
			log.Fatal(err)
		}
		stp, _ := ugpu.Score(res, ref)
		fmt.Printf("  %-10s STP=%.3f  migrated pages=%-6d  overhead: %.1f%% of epochs\n",
			pol.Name(), stp, res.PageMigrations, 100*res.MigFracMean)
	}
}
