// Powercap: DVFS and power capping on a serving cluster. Two GPUs serve one
// seeded LC/BE arrival stream three ways — a nominal-frequency baseline (the
// energy meter runs, the governor has a single operating point and nothing
// to choose), the per-GPU DVFS governor uncapped, and the same governor
// under a cluster power budget. The governor reads the demand/supply degree
// that drives unbalanced partitioning: a memory-bound slice's SMs are mostly
// stalled on DRAM, so downclocking them converts full-price stalled-active
// cycles into cheap gated cycles at little IPC cost; a compute-bound slice's
// idle channels can likewise run slower. The cap controller then shaves
// best-effort slices to the frequency floor before touching latency-critical
// ones, and the cluster frontend re-grants each GPU's measured headroom to
// its busier peers every epoch.
package main

import (
	"fmt"
	"log"

	"ugpu"
)

func main() {
	cfg := ugpu.DefaultConfig()
	cfg.MaxCycles = 120_000
	cfg.EpochCycles = 5_000 // governor and cap arbiter act at epoch boundaries

	var pool []ugpu.Benchmark
	for _, abbr := range []string{"DXTC", "HOTSPOT", "PVC", "LBM"} {
		b, err := ugpu.BenchmarkByName(abbr)
		if err != nil {
			log.Fatal(err)
		}
		pool = append(pool, b)
	}

	// A steady stream the two GPUs can absorb: the point is energy at
	// constant goodput, not overload.
	spec := ugpu.ArrivalSpec{
		Horizon:    90_000,
		MeanGap:    5_000,
		LCFraction: 0.5,
		MinLen:     4_000,
		MaxLen:     10_000,
		Benchmarks: pool,
	}
	alone := ugpu.NewAloneIPC(cfg, ugpu.DefaultOptions())

	// The baseline arm truncates the operating-point tables to the nominal
	// state: energy is metered identically, every governor step is a no-op.
	nominalOnly := &ugpu.PowerConfig{
		SMStates:  ugpu.DefaultSMStates()[:1],
		HBMStates: ugpu.DefaultHBMStates()[:1],
	}

	arms := []struct {
		name  string
		power *ugpu.PowerConfig
		capW  float64
	}{
		{"baseline", nominalOnly, 0},
		{"dvfs", &ugpu.PowerConfig{}, 0},
		{"dvfs+cap", &ugpu.PowerConfig{}, 0}, // cap filled from baseline below
	}

	fmt.Printf("%-10s %12s %8s %8s %9s %7s %6s %7s\n",
		"arm", "energy", "meanW", "ipc", "lcGoodput", "p99", "trans", "cap")
	var basePower, baseEnergy float64
	for i, arm := range arms {
		opt := ugpu.DefaultOptions()
		opt.Power = arm.power
		capW := arm.capW
		if arm.name == "dvfs+cap" {
			capW = 0.80 * basePower // 80% of the baseline's measured draw
		}
		fr, err := ugpu.NewClusterFrontend(ugpu.ClusterServeConfig{
			GPUs:     2,
			Sim:      cfg,
			Opt:      opt,
			Arrivals: spec,
			Seed:     7,
			QueueCap: 4,
			PowerCap: capW,
			Alone:    alone,
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := fr.Run()
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			basePower, baseEnergy = rep.MeanPower, rep.Energy.Total
		}
		fmt.Printf("%-10s %12.0f %8.1f %8.3f %9.3f %7.2f %6d %6.0fW\n",
			arm.name, rep.Energy.Total, rep.MeanPower,
			float64(rep.Served)/float64(rep.Cycles),
			rep.SLO.LCGoodput, rep.SLO.P99, rep.Energy.Transitions, capW)
		if i > 0 && baseEnergy > 0 {
			fmt.Printf("%-10s %11.1f%% vs baseline\n", "  saved",
				(baseEnergy-rep.Energy.Total)/baseEnergy*100)
		}
	}

	fmt.Println("\nSame seed, same stream: only the frequency policy differs. DVFS")
	fmt.Println("trims energy at near-constant goodput; the cap trades further energy")
	fmt.Println("for throughput, shaving best-effort tenants first so latency-critical")
	fmt.Println("goodput holds. The recorded Pareto sweep is")
	fmt.Println("`go run ./cmd/experiments -fig power` (EXPERIMENTS.md).")
}
