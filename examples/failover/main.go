// Failover: the cluster survives losing a GPU. Four backend GPUs serve one
// seeded arrival stream behind a frontend; mid-run a whole GPU crashes.
// Every tenant of the victim rolls back to its last periodic checkpoint and
// is re-dispatched to the survivors under a retry budget. The example
// replays the *same* stream and the *same* crash three ways — no crash,
// crash with plain re-dispatch, crash with the tiered brownout controller —
// and prints the failover accounting: availability, MTTR, lost work, and
// what brownout buys the latency-critical tail when the survivors are
// overloaded.
package main

import (
	"fmt"
	"log"

	"ugpu"
)

func main() {
	cfg := ugpu.DefaultConfig()
	cfg.MaxCycles = 200_000 // serving horizon
	cfg.EpochCycles = 5_000 // scheduling quantum; checkpoints default to 2 epochs

	var pool []ugpu.Benchmark
	for _, abbr := range []string{"DXTC", "HOTSPOT", "PVC", "LBM"} {
		b, err := ugpu.BenchmarkByName(abbr)
		if err != nil {
			log.Fatal(err)
		}
		pool = append(pool, b)
	}

	// A stream dense enough that three GPUs cannot comfortably absorb the
	// fourth's share: losing a GPU turns into genuine overload.
	spec := ugpu.ArrivalSpec{
		Horizon:    160_000,
		MeanGap:    2_500,
		LCFraction: 0.5,
		MinLen:     4_000,
		MaxLen:     10_000,
		Benchmarks: pool,
	}
	alone := ugpu.NewAloneIPC(cfg, ugpu.DefaultOptions())

	// One seeded crash, planned inside the arrival window so the stream is
	// still flowing while the survivors recover; both crash arms share it.
	crashes := ugpu.PlanGPUCrashes(42, 4, 1, uint64(spec.Horizon))
	fmt.Printf("crash schedule: GPU %d at cycle %d\n\n", crashes[0].GPU, crashes[0].Cycle)

	arms := []struct {
		name     string
		crash    bool
		brownout bool
	}{
		{"no-crash", false, false},
		{"crash", true, false},
		{"crash+brownout", true, true},
	}
	fmt.Printf("%-15s %8s %6s %5s %5s %7s %8s %8s %9s %7s\n",
		"arm", "arrived", "done", "shed", "rej", "avail", "mttr", "lost", "lcGoodput", "p99")
	for _, arm := range arms {
		ccfg := ugpu.ClusterServeConfig{
			GPUs:     4,
			Sim:      cfg,
			Opt:      ugpu.DefaultOptions(),
			Arrivals: spec,
			Seed:     42,
			// Shallow backend queues keep cluster-level queueing at the
			// frontend, where the brownout controller measures delay.
			QueueCap: 2,
			Brownout: arm.brownout,
			Alone:    alone,
		}
		if arm.crash {
			ccfg.CrashPlan = crashes
		}
		fr, err := ugpu.NewClusterFrontend(ccfg)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := fr.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s %8d %6d %5d %5d %7.3f %8.0f %8.0f %9.3f %7.2f\n",
			arm.name, rep.Arrived, rep.Completed, rep.Shed, rep.Rejected,
			rep.SLO.Availability, rep.SLO.MTTRCycles, rep.SLO.LostWork,
			rep.SLO.LCGoodput, rep.SLO.P99)
	}

	fmt.Println("\nSame seed, same stream, same crash: only the recovery policy differs.")
	fmt.Println("The crash costs availability and rolls checkpoint-to-crash progress")
	fmt.Println("into lost work; plain re-dispatch lets every queue back up behind the")
	fmt.Println("recovered tenants, while brownout sheds best-effort admissions (and")
	fmt.Println("under deep overload relaxes the LC target 2x, then circuit-breaks)")
	fmt.Println("to keep latency-critical goodput at or above the plain arm. The full")
	fmt.Println("comparison is `go run ./cmd/experiments -fig failover` (EXPERIMENTS.md).")
}
