// Serving: the GPU as a service. A seeded, bursty stream of latency-critical
// (LC) and best-effort (BE) jobs arrives at one dynamically partitioned GPU;
// tenants attach live, run in unbalanced slices, and detach when their work
// is done. The example replays the *same* arrival stream under each
// admission policy and shows the trade-off the online-serving sweep measures
// at scale: in-order FIFO suffers head-of-line blocking on LC tails, the
// class-aware policies protect them with preemptions and selective
// rejection.
package main

import (
	"fmt"
	"log"

	"ugpu"
)

func main() {
	cfg := ugpu.DefaultConfig()
	cfg.MaxCycles = 300_000 // serving horizon
	cfg.EpochCycles = 5_000 // scheduling quantum: admission happens here

	// A small request pool: two compute-bound, two memory-bound benchmarks.
	var pool []ugpu.Benchmark
	for _, abbr := range []string{"DXTC", "HOTSPOT", "PVC", "LBM"} {
		b, err := ugpu.BenchmarkByName(abbr)
		if err != nil {
			log.Fatal(err)
		}
		pool = append(pool, b)
	}

	// Flash-crowd arrivals: Poisson epochs spawning 2 back-to-back jobs.
	spec := ugpu.ArrivalSpec{
		Horizon:    200_000, // last admission; the tail of the run drains
		MeanGap:    6_000,
		Burst:      2,
		LCFraction: 0.5,
		MinLen:     4_000,
		MaxLen:     10_000,
		Benchmarks: pool,
	}

	// One shared alone-IPC reference: each benchmark is measured once and
	// every policy's slowdowns use identical baselines.
	alone := ugpu.NewAloneIPC(cfg, ugpu.DefaultOptions())

	slo := ugpu.DefaultSLO()
	fmt.Printf("%-12s %8s %6s %6s %8s %7s %7s %7s %7s %8s\n",
		"policy", "arrived", "done", "rej", "preempt", "lcMet", "beMet", "p50", "p99", "goodput")
	for _, pol := range ugpu.ServePolicies() {
		srv, err := ugpu.NewServer(ugpu.ServeConfig{
			Sim:      cfg,
			Opt:      ugpu.DefaultOptions(),
			Arrivals: spec,
			Seed:     42,
			Policy:   pol,
			QueueCap: 8,
			Alone:    alone,
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := srv.Run()
		if err != nil {
			log.Fatal(err)
		}
		// How many completed jobs of each class met their slowdown target?
		lcMet, beMet := 0, 0
		for _, oc := range rep.Outcomes {
			if !oc.Completed() {
				continue
			}
			sd := ugpu.Slowdown(oc.Arrival, oc.Finish, oc.AloneCycles)
			if slo.Met(oc.Class, sd) {
				if oc.Class == ugpu.LatencyCritical {
					lcMet++
				} else {
					beMet++
				}
			}
		}
		fmt.Printf("%-12s %8d %6d %6d %8d %7d %7d %7.2f %7.2f %8.3f\n",
			pol, rep.Arrived, rep.SLO.Completed, rep.Rejections, rep.Preemptions,
			lcMet, beMet, rep.SLO.P50, rep.SLO.P99, rep.SLO.Goodput)
	}

	fmt.Printf("\nSLO targets: LC slowdown <= %g, BE <= %g (vs an idle GPU).\n",
		slo.LCSlowdown, slo.BESlowdown)
	fmt.Println("Same seed, same stream: only the admission discipline differs.")
	fmt.Println("Under this flash-crowd overload, in-order misses every LC target")
	fmt.Println("(lcMet=0) while class-aware preempts BE work to land LC jobs inside")
	fmt.Println("their SLO and trims the p99 tail. The full rate sweep is")
	fmt.Println("`go run ./cmd/experiments -fig serve` (see EXPERIMENTS.md).")
}
