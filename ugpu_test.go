package ugpu_test

import (
	"testing"

	"ugpu"
)

func TestConfigs(t *testing.T) {
	cfg := ugpu.DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	p := ugpu.PaperConfig()
	if p.MaxCycles != 25_000_000 || p.EpochCycles != 5_000_000 {
		t.Errorf("PaperConfig lengths = %d/%d", p.MaxCycles, p.EpochCycles)
	}
}

func TestBenchmarkCatalog(t *testing.T) {
	if got := len(ugpu.Benchmarks()); got != 15 {
		t.Errorf("Benchmarks() = %d entries, want 15", got)
	}
	if got := len(ugpu.AIBenchmarks()); got != 5 {
		t.Errorf("AIBenchmarks() = %d entries, want 5", got)
	}
	if _, err := ugpu.BenchmarkByName("PVC"); err != nil {
		t.Error(err)
	}
	if _, err := ugpu.BenchmarkByName("nope"); err == nil {
		t.Error("BenchmarkByName accepted garbage")
	}
}

func TestMixOf(t *testing.T) {
	mix, err := ugpu.MixOf("PVC", "DXTC")
	if err != nil {
		t.Fatal(err)
	}
	if mix.Name != "PVC_DXTC" || !mix.Hetero || len(mix.Apps) != 2 {
		t.Errorf("MixOf = %+v", mix)
	}
	if _, err := ugpu.MixOf(); err == nil {
		t.Error("empty MixOf accepted")
	}
	if _, err := ugpu.MixOf("XYZ"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	homo, _ := ugpu.MixOf("PVC", "LBM")
	if homo.Hetero {
		t.Error("PVC_LBM marked heterogeneous")
	}
}

func TestMixFamilies(t *testing.T) {
	if got := len(ugpu.AllMixes()); got != 105 {
		t.Errorf("AllMixes = %d, want 105", got)
	}
	if got := len(ugpu.HeterogeneousMixes(50)); got != 50 {
		t.Errorf("HeterogeneousMixes(50) = %d", got)
	}
	if got := len(ugpu.EightProgramMixes(3, 1)); got != 3 {
		t.Errorf("EightProgramMixes = %d", got)
	}
	if got := len(ugpu.AIMixes()); got != 10 {
		t.Errorf("AIMixes = %d", got)
	}
}

func TestPolicyByName(t *testing.T) {
	cfg := ugpu.DefaultConfig()
	for _, name := range ugpu.PolicyNames() {
		p, err := ugpu.PolicyByName(name, cfg)
		if err != nil {
			t.Errorf("PolicyByName(%q): %v", name, err)
			continue
		}
		if p.Name() == "" {
			t.Errorf("policy %q has empty name", name)
		}
	}
	if _, err := ugpu.PolicyByName("bogus", cfg); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestEndToEndRun(t *testing.T) {
	cfg := ugpu.DefaultConfig()
	cfg.MaxCycles = 40_000
	cfg.EpochCycles = 20_000
	mix, err := ugpu.MixOf("LAVAMD", "CP")
	if err != nil {
		t.Fatal(err)
	}
	pol := ugpu.WithOptions(ugpu.NewUGPU(cfg), func(o *ugpu.Options) {
		o.FootprintScale = 64
		o.CheckReads = true
	})
	res, err := ugpu.Run(cfg, pol, mix)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 40_000 {
		t.Errorf("cycles = %d", res.Cycles)
	}
	if res.TotalIPC() <= 0 {
		t.Error("no progress")
	}
	if len(res.Final) != 2 {
		t.Errorf("final partition = %+v", res.Final)
	}
	// Metrics plumb through.
	stp, antt := ugpu.Score(res, []float64{10, 150})
	if stp <= 0 || antt <= 0 {
		t.Errorf("Score = (%f, %f)", stp, antt)
	}
	e := ugpu.DefaultEnergy().Energy(cfg, res)
	if e.Total() <= 0 || e.MemFraction() <= 0 {
		t.Errorf("energy breakdown = %+v", e)
	}
}

func TestSimulationStepwise(t *testing.T) {
	cfg := ugpu.DefaultConfig()
	cfg.MaxCycles = 30_000
	cfg.EpochCycles = 15_000
	mix, _ := ugpu.MixOf("PVC", "DXTC")
	pol := ugpu.WithOptions(ugpu.NewBP(), func(o *ugpu.Options) { o.FootprintScale = 64 })
	sim, err := ugpu.NewSimulation(cfg, pol, mix)
	if err != nil {
		t.Fatal(err)
	}
	if sim.G == nil {
		t.Fatal("simulation exposes no GPU")
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs != 2 {
		t.Errorf("epochs = %d, want 2", res.Epochs)
	}
}
